// Facade-level arbitrary-N tests: NewHostPlan must plan every positive
// length, route it to the right engine (staged, mixed-radix, or
// Bluestein), keep the determinism contract across serial/parallel/
// batched execution, and share cores safely through CachedHostPlan
// under concurrent churn over a mixed power-of-two/composite/prime
// length stream.
package codeletfft_test

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"codeletfft"
)

// TestNewHostPlanEveryLength is the exhaustive acceptance loop: every
// 1 ≤ n ≤ 512 plans successfully, matches the O(N²) reference DFT, and
// inverts back to the input.
func TestNewHostPlanEveryLength(t *testing.T) {
	for n := 1; n <= 512; n++ {
		h, err := codeletfft.NewHostPlan(n)
		if err != nil {
			t.Fatalf("NewHostPlan(%d): %v", n, err)
		}
		if h.N() != n {
			t.Fatalf("NewHostPlan(%d).N() = %d", n, h.N())
		}
		x := noise(n, int64(n))
		want := codeletfft.DFT(x)
		var peak float64
		for _, v := range want {
			if m := math.Hypot(real(v), imag(v)); m > peak {
				peak = m
			}
		}
		if peak == 0 {
			peak = 1
		}
		data := append([]complex128(nil), x...)
		if err := h.Transform(data); err != nil {
			t.Fatalf("Transform(n=%d): %v", n, err)
		}
		if e := math.Sqrt(maxErr(data, want)); e > 1e-9*peak {
			t.Fatalf("n=%d (%s): facade vs DFT error %g exceeds 1e-9 of peak %g",
				n, h.Algorithm(), e, peak)
		}
		if err := h.Inverse(data); err != nil {
			t.Fatalf("Inverse(n=%d): %v", n, err)
		}
		if e := math.Sqrt(maxErr(data, x)); e > 1e-9 {
			t.Fatalf("n=%d (%s): round-trip error %g", n, h.Algorithm(), e)
		}
	}
}

// TestHostPlanAlgorithmRouting pins which engine each length family
// resolves to.
func TestHostPlanAlgorithmRouting(t *testing.T) {
	cases := []struct {
		n      int
		prefix string
	}{
		{256, "staged"},
		{1, "mixed-radix"},
		{12, "mixed-radix"},
		{1000, "mixed-radix"},
		{11, "bluestein"},
		{1009, "bluestein"},
	}
	for _, c := range cases {
		h, err := codeletfft.NewHostPlan(c.n)
		if err != nil {
			t.Fatalf("NewHostPlan(%d): %v", c.n, err)
		}
		if !strings.HasPrefix(h.Algorithm(), c.prefix) {
			t.Fatalf("NewHostPlan(%d).Algorithm() = %q, want prefix %q", c.n, h.Algorithm(), c.prefix)
		}
	}
}

// TestHostPlanHugeLengths plans the two sizes the issue calls out — the
// 5-smooth million and the prime 2^20+7 — and round-trips both.
func TestHostPlanHugeLengths(t *testing.T) {
	if testing.Short() {
		t.Skip("large transforms skipped in -short mode")
	}
	for _, c := range []struct {
		n      int
		prefix string
	}{
		{1000000, "mixed-radix"},
		{1<<20 + 7, "bluestein"},
	} {
		h, err := codeletfft.NewHostPlan(c.n)
		if err != nil {
			t.Fatalf("NewHostPlan(%d): %v", c.n, err)
		}
		if !strings.HasPrefix(h.Algorithm(), c.prefix) {
			t.Fatalf("NewHostPlan(%d).Algorithm() = %q, want prefix %q", c.n, h.Algorithm(), c.prefix)
		}
		x := noise(c.n, int64(c.n))
		data := append([]complex128(nil), x...)
		if err := h.Transform(data); err != nil {
			t.Fatalf("Transform(n=%d): %v", c.n, err)
		}
		if err := h.Inverse(data); err != nil {
			t.Fatalf("Inverse(n=%d): %v", c.n, err)
		}
		if e := math.Sqrt(maxErr(data, x)); e > 1e-8 {
			t.Fatalf("n=%d: round-trip error %g", c.n, e)
		}
	}
}

// TestMixedFacadeBitwise: for one mixed-radix plan shape, the serial,
// parallel, and batched facade paths all produce identical bits.
func TestMixedFacadeBitwise(t *testing.T) {
	const n = 3072 // 3·2^10
	serial, err := codeletfft.NewHostPlan(n, codeletfft.WithWorkers(1))
	if err != nil {
		t.Fatalf("NewHostPlan serial: %v", err)
	}
	parallel, err := codeletfft.NewHostPlan(n,
		codeletfft.WithWorkers(4), codeletfft.WithThreshold(1))
	if err != nil {
		t.Fatalf("NewHostPlan parallel: %v", err)
	}
	x := noise(n, 31)
	want := append([]complex128(nil), x...)
	if err := serial.Transform(want); err != nil {
		t.Fatal(err)
	}
	got := append([]complex128(nil), x...)
	if err := parallel.Transform(got); err != nil {
		t.Fatal(err)
	}
	if !sameBits(got, want) {
		t.Fatal("parallel mixed-radix transform differs bitwise from serial")
	}

	batch := [][]complex128{
		append([]complex128(nil), x...),
		append([]complex128(nil), x...),
		append([]complex128(nil), x...),
	}
	if err := parallel.TransformBatch(batch); err != nil {
		t.Fatal(err)
	}
	for r := range batch {
		if !sameBits(batch[r], want) {
			t.Fatalf("batched mixed-radix row %d differs bitwise from serial", r)
		}
	}

	if err := serial.Inverse(want); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Inverse(got); err != nil {
		t.Fatal(err)
	}
	if !sameBits(got, want) {
		t.Fatal("parallel mixed-radix inverse differs bitwise from serial")
	}
}

// TestBluesteinFacadeBitwise: with the kernel pinned (so autotuning
// cannot resolve differently per worker count), the Bluestein facade
// path is bitwise-deterministic across engine shapes.
func TestBluesteinFacadeBitwise(t *testing.T) {
	const n = 1009 // prime
	pin := codeletfft.WithKernel(codeletfft.KernelRadix2)
	serial, err := codeletfft.NewHostPlan(n, codeletfft.WithWorkers(1), pin)
	if err != nil {
		t.Fatalf("NewHostPlan serial: %v", err)
	}
	parallel, err := codeletfft.NewHostPlan(n,
		codeletfft.WithWorkers(4), codeletfft.WithThreshold(1), pin)
	if err != nil {
		t.Fatalf("NewHostPlan parallel: %v", err)
	}
	x := noise(n, 37)
	want := append([]complex128(nil), x...)
	if err := serial.Transform(want); err != nil {
		t.Fatal(err)
	}
	got := append([]complex128(nil), x...)
	if err := parallel.Transform(got); err != nil {
		t.Fatal(err)
	}
	if !sameBits(got, want) {
		t.Fatal("parallel Bluestein transform differs bitwise from serial")
	}
	batch := [][]complex128{
		append([]complex128(nil), x...),
		append([]complex128(nil), x...),
	}
	if err := parallel.TransformBatch(batch); err != nil {
		t.Fatal(err)
	}
	for r := range batch {
		if !sameBits(batch[r], want) {
			t.Fatalf("batched Bluestein row %d differs bitwise from serial", r)
		}
	}
	if err := serial.Inverse(want); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Inverse(got); err != nil {
		t.Fatal(err)
	}
	if !sameBits(got, want) {
		t.Fatal("parallel Bluestein inverse differs bitwise from serial")
	}
}

// TestCachedHostPlanChurn hammers the shared plan cache from several
// goroutines with a length stream that mixes power-of-two, composite,
// prime, and degenerate sizes — the shapes that now coexist in one
// cache under distinct radix signatures. Run under -race in CI, this is
// the concurrency regression test for the widened planner.
func TestCachedHostPlanChurn(t *testing.T) {
	lengths := []int{256, 720, 1009, 64, 1000, 12, 1, 97}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := lengths[(g+i)%len(lengths)]
				h, err := codeletfft.CachedHostPlan(n)
				if err != nil {
					errc <- err
					return
				}
				x := noise(n, int64(g*1000+i))
				data := append([]complex128(nil), x...)
				if err := h.Transform(data); err != nil {
					errc <- err
					return
				}
				if err := h.Inverse(data); err != nil {
					errc <- err
					return
				}
				if e := math.Sqrt(maxErr(data, x)); e > 1e-9 {
					errc <- errors.New("cached plan round-trip diverged")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestFacadeUnsupportedLength: the facade rejects only non-positive
// lengths with ErrUnsupportedLength; the real-input path accepts every
// even n ≥ 4 and rejects odd or tiny lengths with the same sentinel.
func TestFacadeUnsupportedLength(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := codeletfft.NewHostPlan(n); !errors.Is(err, codeletfft.ErrUnsupportedLength) {
			t.Fatalf("NewHostPlan(%d) err = %v, want ErrUnsupportedLength", n, err)
		}
	}
	for _, n := range []int{0, 2, 99} {
		if _, err := codeletfft.NewRealPlan(n); !errors.Is(err, codeletfft.ErrUnsupportedLength) {
			t.Fatalf("NewRealPlan(%d) err = %v, want ErrUnsupportedLength", n, err)
		}
	}
	// Even non-power-of-two lengths are no longer rejected: they route
	// through the mixed-radix (or Bluestein) half transform.
	if r, err := codeletfft.NewRealPlan(100); err != nil || r.N() != 100 {
		t.Fatalf("NewRealPlan(100) = %v, %v; want a plan", r, err)
	}
}
