// loadgen is the smoke load generator for fftserved: it drives the
// daemon with concurrent clients posting mixed-size binary frames,
// tallies response codes and latencies, and finishes by scraping
// /metrics so a run doubles as a coalescing check (mean batch
// occupancy > 1 proves the window is merging concurrent requests).
//
//	go run ./cmd/fftserved &
//	go run ./scripts/loadgen -addr http://localhost:8080 -clients 200 -duration 5s
//
// With -cluster the target is a fftcluster coordinator instead: the
// mix shifts to large complex transforms (the four-step sweet spot),
// real-input kinds are dropped (the cluster path is complex-only), and
// the final scrape reports the coordinator's retry/hedge/degradation
// counters — so a run against a coordinator with -hedge set doubles as
// a hedging smoke test:
//
//	go run ./cmd/fftcluster -workers ... -hedge 2ms &
//	go run ./scripts/loadgen -cluster -addr http://localhost:9100 -clients 8
//
// Shed responses (429 queue-full, 503 draining) are counted separately
// from failures: under deliberate overload they are the daemon working
// as designed, not an error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"codeletfft/internal/serve"
)

// flagSet reports whether the named flag was given explicitly on the
// command line (as opposed to holding its default).
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// retryable reports whether a transport error is the keep-alive
// shutdown race (server closed a pooled connection under our write)
// rather than a request the server actually saw.
func retryable(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "connection reset by peer") ||
		strings.Contains(msg, "EOF") ||
		strings.Contains(msg, "broken pipe") ||
		strings.Contains(msg, "use of closed network connection")
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "daemon base URL")
		clients  = flag.Int("clients", 200, "concurrent client goroutines")
		duration = flag.Duration("duration", 5*time.Second, "how long to generate load")
		sizeList = flag.String("sizes", "1024,4096,16384", "comma-separated transform lengths to mix")
		realFrac = flag.Float64("real", 0.25, "fraction of requests using the real-input kind")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		clusterT = flag.Bool("cluster", false, "target a fftcluster coordinator: large-N complex mix, dist_* metrics scrape")
	)
	flag.Parse()

	if *clusterT {
		// The cluster path serves complex frames only, and pays off at
		// sizes worth factoring four-step; respect explicit overrides.
		*realFrac = 0
		if !flagSet("sizes") {
			*sizeList = "65536,262144,1048576"
		}
		if !flagSet("timeout") {
			*timeout = 30 * time.Second
		}
	}

	var sizes []int
	for _, s := range strings.Split(*sizeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad size %q: %v", s, err)
		}
		sizes = append(sizes, n)
	}

	var (
		ok, shed, refused, failed atomic.Int64
		mu                        sync.Mutex
		latencies                 []time.Duration
		failSamples               []string
	)
	recordFailure := func(msg string) {
		failed.Add(1)
		mu.Lock()
		if len(failSamples) < 10 {
			failSamples = append(failSamples, msg)
		}
		mu.Unlock()
	}
	client := &http.Client{Timeout: *timeout}
	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(stop) {
				n := sizes[rng.Intn(len(sizes))]
				var frame serve.Frame
				if rng.Float64() < *realFrac {
					sig := make([]float64, n)
					for i := range sig {
						sig[i] = rng.NormFloat64()
					}
					frame = serve.Frame{Kind: serve.KindReal, Real: sig}
				} else {
					data := make([]complex128, n)
					for i := range data {
						data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
					}
					kind := serve.KindForward
					if rng.Intn(2) == 1 {
						kind = serve.KindInverse
					}
					frame = serve.Frame{Kind: kind, Complex: data}
				}
				enc, err := serve.EncodeFrame(frame)
				if err != nil {
					log.Fatalf("encoding frame: %v", err)
				}
				start := time.Now()
				resp, err := client.Post(*addr+"/fft/bin", "application/octet-stream", bytes.NewReader(enc))
				// A reset or EOF on a pooled keep-alive connection is the
				// shutdown race: the server closed the idle connection
				// while our bytes were in flight, so the request was never
				// read. Frames are stateless, so retrying is always safe;
				// each retry may draw another doomed pooled connection, so
				// allow a few before giving up (a fresh dial against a
				// closed listener fails with a clean refusal instead).
				for attempt := 0; err != nil && retryable(err) && attempt < 4; attempt++ {
					resp, err = client.Post(*addr+"/fft/bin", "application/octet-stream", bytes.NewReader(enc))
				}
				if err != nil {
					// A refused dial means the listener is gone (daemon
					// exited); the request was never in flight. Anything
					// else that survives the retry counts as a failure:
					// under graceful drain an accepted request must be
					// answered, never severed.
					if strings.Contains(err.Error(), "connection refused") {
						refused.Add(1)
					} else {
						recordFailure(err.Error())
					}
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					d := time.Since(start)
					mu.Lock()
					latencies = append(latencies, d)
					mu.Unlock()
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					recordFailure(fmt.Sprintf("status %d", resp.StatusCode))
				}
			}
		}(int64(c) + 1)
	}
	wg.Wait()

	total := ok.Load() + shed.Load() + refused.Load() + failed.Load()
	fmt.Printf("requests: %d total, %d ok, %d shed (429/503), %d refused dials, %d failed\n",
		total, ok.Load(), shed.Load(), refused.Load(), failed.Load())
	for _, msg := range failSamples {
		fmt.Printf("  failure: %s\n", msg)
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		q := func(p float64) time.Duration { return latencies[int(p*float64(len(latencies)-1))] }
		fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
			q(0.50), q(0.90), q(0.99), latencies[len(latencies)-1])
		fmt.Printf("throughput: %.0f ok req/s over %v\n",
			float64(ok.Load())/duration.Seconds(), *duration)
	}

	resp, err := http.Get(*addr + "/metrics")
	if err != nil {
		// The daemon may already have exited (SIGTERM drain runs); the
		// load results above still stand.
		log.Printf("scraping /metrics skipped: %v", err)
		if failed.Load() > 0 {
			os.Exit(1)
		}
		return
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("reading /metrics: %v", err)
	}
	fmt.Println("\ndaemon metrics:")
	interesting := []string{
		"fft_requests_total", "fft_batches_total",
		"fft_batch_occupancy_mean", "fft_batch_occupancy_max",
		"fft_responses_shed_queue_total", "fft_responses_shed_drain_total",
		"fft_responses_deadline_total", "fft_queue_depth",
		"plan_cache_len", "engine_batch_occupancy_mean",
	}
	if *clusterT {
		interesting = []string{
			"cluster_requests_total", "cluster_ok_total", "cluster_shed_total",
			"dist_transforms_total", "dist_shards_total",
			"dist_rpc_attempts_total", "dist_rpc_errors_total",
			"dist_retries_total", "dist_hedges_total", "dist_hedge_wins_total",
			"dist_degraded_total", "dist_local_shards_total",
			"dist_workers_eligible", "dist_workers_total",
		}
	}
	for _, line := range strings.Split(string(raw), "\n") {
		for _, name := range interesting {
			if strings.HasPrefix(line, name+" ") {
				fmt.Println("  " + line)
			}
		}
	}
	if failed.Load() > 0 {
		os.Exit(1)
	}
}
