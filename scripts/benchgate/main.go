// benchgate compares two `go test -bench` result sets and fails when
// the geometric-mean ns/op ratio (new/old) regresses past a threshold.
// It is the enforcement half of the CI bench-compare job: benchstat
// renders the human-readable delta, benchgate decides pass/fail.
//
// Either side may be raw `go test -bench` text output or a JSON
// baseline previously written with -snapshot:
//
//	go test -run '^$' -bench 'BenchmarkHost(Batch|Parallel|Kernels)' . > new.txt
//	go run ./scripts/benchgate -old BENCH_baseline.json -new new.txt
//	go run ./scripts/benchgate -snapshot BENCH_baseline.json -new new.txt
//
// Benchmark names are compared with the trailing -GOMAXPROCS suffix
// stripped, so results from machines with different core counts still
// line up. Benchmarks present on only one side are reported and
// skipped; the gate needs at least one common benchmark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"` // name -> ns/op
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

// stripProcs removes the trailing -N GOMAXPROCS suffix Go appends to
// benchmark names ("BenchmarkHostBatch/loop-8" -> ".../loop").
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseText collects ns/op per benchmark from `go test -bench` output,
// averaging repeated runs (-count > 1) of the same benchmark.
func parseText(data []byte) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil || ns <= 0 {
			continue
		}
		name := stripProcs(m[1])
		sums[name] += ns
		counts[name]++
	}
	out := make(map[string]float64, len(sums))
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out
}

func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".json") {
		var b baseline
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return b.Benchmarks, nil
	}
	return parseText(data), nil
}

func main() {
	var (
		oldPath    = flag.String("old", "", "baseline: bench text output or .json snapshot")
		newPath    = flag.String("new", "", "candidate: bench text output or .json snapshot")
		pattern    = flag.String("pattern", `^BenchmarkHost(Batch|Parallel|Kernels|SoA)`, "regexp selecting which benchmarks gate")
		maxRegress = flag.Float64("max-regress", 0.15, "fail when geomean(new/old) exceeds 1+this")
		snapshot   = flag.String("snapshot", "", "instead of gating, write -new results to this .json baseline")
		note       = flag.String("note", "", "note stored in the snapshot")
	)
	flag.Parse()

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -pattern: %v\n", err)
		os.Exit(2)
	}
	newRes, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	for name := range newRes {
		if !re.MatchString(name) {
			delete(newRes, name)
		}
	}
	if len(newRes) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmarks in %s match %s\n", *newPath, *pattern)
		os.Exit(2)
	}

	if *snapshot != "" {
		out, err := json.MarshalIndent(baseline{Note: *note, Benchmarks: newRes}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*snapshot, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(newRes), *snapshot)
		return
	}

	if *oldPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old is required (or use -snapshot)")
		os.Exit(2)
	}
	oldRes, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	var names, newOnly, oldOnly []string
	for name := range newRes {
		if _, ok := oldRes[name]; ok {
			names = append(names, name)
		} else {
			newOnly = append(newOnly, name)
		}
	}
	for name := range oldRes {
		if re.MatchString(name) {
			if _, ok := newRes[name]; !ok {
				oldOnly = append(oldOnly, name)
			}
		}
	}
	sort.Strings(newOnly)
	sort.Strings(oldOnly)
	for _, name := range newOnly {
		fmt.Printf("new-only (skipped): %s\n", name)
	}
	for _, name := range oldOnly {
		fmt.Printf("old-only (skipped): %s\n", name)
	}
	if len(names) == 0 {
		// Name exactly what went missing on each side, so a renamed
		// benchmark or an over-narrow -bench regexp is diagnosable from
		// the CI log instead of surfacing as a bare geomean error.
		fmt.Fprintf(os.Stderr, "benchgate: no common benchmarks between %s and %s (pattern %s)\n",
			*oldPath, *newPath, *pattern)
		if len(oldOnly) > 0 {
			fmt.Fprintf(os.Stderr, "  expected from the baseline but missing from %s:\n", *newPath)
			for _, name := range oldOnly {
				fmt.Fprintf(os.Stderr, "    %s\n", name)
			}
		} else {
			fmt.Fprintf(os.Stderr, "  baseline %s has no benchmarks matching the pattern\n", *oldPath)
		}
		if len(newOnly) > 0 {
			fmt.Fprintf(os.Stderr, "  present only in %s (renamed, or baseline is stale?):\n", *newPath)
			for _, name := range newOnly {
				fmt.Fprintf(os.Stderr, "    %s\n", name)
			}
		}
		fmt.Fprintln(os.Stderr, "  fix: widen the `go test -bench` selector or refresh the baseline with -snapshot")
		os.Exit(2)
	}
	sort.Strings(names)

	logSum := 0.0
	ratios := make(map[string]float64, len(names))
	for _, name := range names {
		ratio := newRes[name] / oldRes[name]
		ratios[name] = ratio
		logSum += math.Log(ratio)
		fmt.Printf("%-60s old %12.0f ns/op  new %12.0f ns/op  %+.1f%%\n",
			name, oldRes[name], newRes[name], (ratio-1)*100)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	limit := 1 + *maxRegress
	fmt.Printf("geomean ratio new/old: %.4f (limit %.4f over %d benchmarks)\n",
		geomean, limit, len(names))
	if geomean > limit {
		// Re-print the table worst-first on stderr so the offending
		// benchmarks lead the CI failure log instead of hiding in an
		// alphabetical listing.
		sort.Slice(names, func(i, j int) bool { return ratios[names[i]] > ratios[names[j]] })
		fmt.Fprintln(os.Stderr, "per-benchmark ratios, worst first:")
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "  %-58s %+.1f%%  (old %.0f ns/op, new %.0f ns/op)\n",
				name, (ratios[name]-1)*100, oldRes[name], newRes[name])
		}
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — geomean regression %.1f%% exceeds %.0f%%\n",
			(geomean-1)*100, *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}
