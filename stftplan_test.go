// Property tests of the spectrogram API: frames against the reference
// DFT across planner regimes, the Hann constant-overlap-add invariant
// and the reconstruction it guarantees, stream/batch equivalence under
// ragged writes, zero steady-state allocations, and shape validation.
package codeletfft_test

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"codeletfft"
)

func testSignal(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/37) + 0.5*math.Cos(2*math.Pi*float64(i)/11) + 0.1*float64(i%7)
	}
	return x
}

// TestSTFTMatchesDFT checks every spectrogram frame bin-for-bin against
// the reference DFT of the windowed frame, for power-of-two,
// mixed-radix, and Bluestein frame lengths, windowed and rectangular.
func TestSTFTMatchesDFT(t *testing.T) {
	for _, frame := range []int{16, 12, 13} {
		for _, win := range [][]float64{nil, codeletfft.HannWindow(frame)} {
			hop := (frame + 1) / 2
			p, err := codeletfft.NewSTFTPlan(frame, hop, win)
			if err != nil {
				t.Fatalf("NewSTFTPlan(%d, %d): %v", frame, hop, err)
			}
			x := testSignal(6 * frame)
			nf := p.NumFrames(len(x))
			dst := make([][]complex128, nf)
			for f := range dst {
				dst[f] = make([]complex128, frame)
			}
			if err := p.Transform(dst, x); err != nil {
				t.Fatal(err)
			}
			for f := 0; f < nf; f++ {
				ref := make([]complex128, frame)
				for i := range ref {
					v := x[f*hop+i]
					if win != nil {
						v *= win[i]
					}
					ref[i] = complex(v, 0)
				}
				want := codeletfft.DFT(ref)
				for k := range want {
					if d := cmplx.Abs(dst[f][k] - want[k]); d > 1e-9*float64(frame) {
						t.Fatalf("frame=%d win=%v: frame %d bin %d diverged by %g", frame, win != nil, f, k, d)
					}
				}
			}
		}
	}
}

// TestHannCOLA pins the constant-overlap-add property the docs promise:
// at hop = n/2 the shifted periodic Hann windows sum to exactly 1 —
// and then verifies the reconstruction it implies end to end: inverse
// transforming a Hann spectrogram and overlap-adding the frames
// recovers the signal over the fully-covered interior.
func TestHannCOLA(t *testing.T) {
	const frame = 64
	const hop = frame / 2
	win := codeletfft.HannWindow(frame)
	for i := 0; i < hop; i++ {
		if d := math.Abs(win[i] + win[i+hop] - 1); d > 1e-12 {
			t.Fatalf("Hann COLA violated at %d: w[i]+w[i+hop] = %g", i, win[i]+win[i+hop])
		}
	}

	p, err := codeletfft.NewSTFTPlan(frame, hop, win)
	if err != nil {
		t.Fatal(err)
	}
	x := testSignal(16 * frame)
	nf := p.NumFrames(len(x))
	frames := make([][]complex128, nf)
	for f := range frames {
		frames[f] = make([]complex128, frame)
	}
	if err := p.Transform(frames, x); err != nil {
		t.Fatal(err)
	}

	// Invert every frame and overlap-add.
	h, err := codeletfft.NewHostPlan(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.InverseBatch(frames); err != nil {
		t.Fatal(err)
	}
	recon := make([]float64, len(x))
	for f := 0; f < nf; f++ {
		for i, v := range frames[f] {
			recon[f*hop+i] += real(v)
		}
	}
	// The interior [hop, nf·hop) is covered by two overlapping windows
	// summing to 1; the first and last half-frames see only one window.
	for i := hop; i < nf*hop; i++ {
		if d := math.Abs(recon[i] - x[i]); d > 1e-9 {
			t.Fatalf("COLA reconstruction diverged at %d by %g", i, d)
		}
	}
}

// TestSTFTStreamMatchesBatch drives the streaming spectrogram with
// ragged writes — single samples, sub-hop dribbles, multi-frame bursts
// — and checks every frame equals the batch Transform's.
func TestSTFTStreamMatchesBatch(t *testing.T) {
	const frame, hop = 32, 12
	win := codeletfft.HannWindow(frame)
	p, err := codeletfft.NewSTFTPlan(frame, hop, win)
	if err != nil {
		t.Fatal(err)
	}
	x := testSignal(50 * hop)
	nf := p.NumFrames(len(x))
	want := make([][]complex128, nf)
	for f := range want {
		want[f] = make([]complex128, frame)
	}
	if err := p.Transform(want, x); err != nil {
		t.Fatal(err)
	}

	s := p.Stream()
	rng := rand.New(rand.NewSource(3))
	got := make([][]complex128, 0, nf)
	off := 0
	drain := func() {
		for {
			dst := make([]complex128, frame)
			ok, err := s.Next(dst)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return
			}
			got = append(got, dst)
		}
	}
	for off < len(x) {
		c := min(1+rng.Intn(3*frame), len(x)-off)
		s.Write(x[off : off+c])
		off += c
		if rng.Intn(2) == 0 {
			drain()
		}
	}
	drain()
	if s.Pending() != 0 {
		t.Fatalf("stream still reports %d pending frames after drain", s.Pending())
	}
	if len(got) != nf {
		t.Fatalf("stream yielded %d frames, batch yields %d", len(got), nf)
	}
	for f := range got {
		for k := range got[f] {
			if d := cmplx.Abs(got[f][k] - want[f][k]); d > 1e-12 {
				t.Fatalf("stream frame %d bin %d diverged by %g", f, k, d)
			}
		}
	}
}

// TestSTFTStreamSteadyStateAllocs: one hop in, one frame out, zero
// allocations once warm.
func TestSTFTStreamSteadyStateAllocs(t *testing.T) {
	const frame, hop = 256, 64
	p, err := codeletfft.NewSTFTPlan(frame, hop, codeletfft.HannWindow(frame), codeletfft.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stream()
	x := testSignal(frame)
	dst := make([]complex128, frame)
	s.Write(x)
	if ok, err := s.Next(dst); err != nil || !ok { // warm buffers and engine
		t.Fatalf("warmup: ok=%v err=%v", ok, err)
	}
	chunk := x[:hop]
	if avg := testing.AllocsPerRun(50, func() {
		s.Write(chunk)
		if ok, err := s.Next(dst); err != nil || !ok {
			t.Fatalf("steady state: ok=%v err=%v", ok, err)
		}
	}); avg > 0 {
		t.Fatalf("STFTStream Write+Next allocates %.1f objects/op in steady state, want 0", avg)
	}
}

// TestNewSTFTPlanErrors: degenerate shapes error with the sentinel;
// a wrong-length window panics with ErrLengthMismatch.
func TestNewSTFTPlanErrors(t *testing.T) {
	for _, tc := range []struct{ frame, hop int }{{0, 1}, {16, 0}, {16, 17}, {-4, 1}} {
		if _, err := codeletfft.NewSTFTPlan(tc.frame, tc.hop, nil); !errors.Is(err, codeletfft.ErrUnsupportedLength) {
			t.Fatalf("NewSTFTPlan(%d, %d) err = %v, want ErrUnsupportedLength", tc.frame, tc.hop, err)
		}
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("wrong-length window did not panic")
		} else if err, ok := r.(error); !ok || !errors.Is(err, codeletfft.ErrLengthMismatch) {
			t.Fatalf("panic value %v, want an error wrapping ErrLengthMismatch", r)
		}
	}()
	_, _ = codeletfft.NewSTFTPlan(16, 8, make([]float64, 15))
}
