// Benchmarks regenerating each table and figure of the paper, plus
// ablations over the design choices called out in DESIGN.md. The figure
// benchmarks run the experiment suite in quick mode and report the
// headline simulated metric alongside wall-clock time; `go run
// ./cmd/figures` produces the full-size sweeps.
package codeletfft_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"codeletfft"
	"codeletfft/cluster"
	"codeletfft/internal/exp"
)

func quickCfg() exp.Config {
	cfg := exp.NewConfig()
	cfg.Quick = true
	return cfg
}

// benchFigure runs one experiment per iteration and reports its headline
// series value as a custom metric.
func benchFigure(b *testing.B, run func(exp.Config) (*exp.Result, error), metric string, pick func(*exp.Result) float64) {
	b.Helper()
	cfg := quickCfg()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed() {
			for _, c := range res.Checks {
				if !c.Pass {
					b.Fatalf("%s: shape check %q failed: %s", res.ID, c.Name, c.Detail)
				}
			}
		}
		last = pick(res)
	}
	b.ReportMetric(last, metric)
}

func BenchmarkFig1CoarseBankTrace(b *testing.B) {
	benchFigure(b, exp.Fig1CoarseTrace, "early_skew", func(r *exp.Result) float64 {
		// Peak bank-0 rate relative to the other banks' mean.
		var maxB0, maxOther float64
		for w := range r.Series[0].Y {
			if r.Series[0].Y[w] > maxB0 {
				maxB0 = r.Series[0].Y[w]
			}
			for bk := 1; bk < 4; bk++ {
				if r.Series[bk].Y[w] > maxOther {
					maxOther = r.Series[bk].Y[w]
				}
			}
		}
		return maxB0 / maxOther
	})
}

func BenchmarkFig2GuidedBankTrace(b *testing.B) {
	benchFigure(b, exp.Fig2GuidedTrace, "windows", func(r *exp.Result) float64 {
		return float64(len(r.Series[0].Y))
	})
}

func BenchmarkFig6HashBankTrace(b *testing.B) {
	benchFigure(b, exp.Fig6HashTrace, "windows", func(r *exp.Result) float64 {
		return float64(len(r.Series[0].Y))
	})
}

func BenchmarkFig7CodeletSize(b *testing.B) {
	benchFigure(b, exp.Fig7CodeletSize, "best_gflops_sim", func(r *exp.Result) float64 {
		best := 0.0
		for _, v := range r.Series[0].Y {
			if v > best {
				best = v
			}
		}
		return best
	})
}

func BenchmarkFig8Sizes(b *testing.B) {
	benchFigure(b, exp.Fig8InputSizes, "guided_gflops_sim", func(r *exp.Result) float64 {
		for _, s := range r.Series {
			if s.Name == "fine guided" {
				return s.Y[len(s.Y)-1]
			}
		}
		return 0
	})
}

func BenchmarkFig9Threads(b *testing.B) {
	benchFigure(b, exp.Fig9ThreadScaling, "guided_gflops_sim", func(r *exp.Result) float64 {
		for _, s := range r.Series {
			if s.Name == "fine guided" {
				return s.Y[len(s.Y)-1]
			}
		}
		return 0
	})
}

func BenchmarkTablePeak(b *testing.B) {
	benchFigure(b, exp.TablePeak, "peak64_gflops", func(r *exp.Result) float64 {
		return codeletfft.TheoreticalPeakGFLOPS(codeletfft.DefaultMachine(), 64)
	})
}

// benchVariant simulates one variant at N=2^14 and reports the simulated
// GFLOPS.
func benchVariant(b *testing.B, v codeletfft.Variant, mutate func(*codeletfft.Options)) {
	b.Helper()
	var gf float64
	for i := 0; i < b.N; i++ {
		opts := codeletfft.NewOptions(1<<14, v)
		opts.SkipNumerics = true
		if mutate != nil {
			mutate(&opts)
		}
		res, err := codeletfft.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		gf = res.GFLOPS
	}
	b.ReportMetric(gf, "gflops_sim")
}

func BenchmarkVariantCoarse(b *testing.B)     { benchVariant(b, codeletfft.Coarse, nil) }
func BenchmarkVariantCoarseHash(b *testing.B) { benchVariant(b, codeletfft.CoarseHash, nil) }
func BenchmarkVariantFine(b *testing.B)       { benchVariant(b, codeletfft.Fine, nil) }
func BenchmarkVariantFineHash(b *testing.B)   { benchVariant(b, codeletfft.FineHash, nil) }
func BenchmarkVariantGuided(b *testing.B)     { benchVariant(b, codeletfft.FineGuided, nil) }

// Ablations (DESIGN.md §8).

func BenchmarkAblationSharedCounters(b *testing.B) {
	benchVariant(b, codeletfft.Fine, func(o *codeletfft.Options) { o.SharedCounters = true })
}

func BenchmarkAblationPerChildCounters(b *testing.B) {
	benchVariant(b, codeletfft.Fine, func(o *codeletfft.Options) { o.SharedCounters = false })
}

func BenchmarkAblationFIFOPool(b *testing.B) {
	benchVariant(b, codeletfft.Fine, func(o *codeletfft.Options) { o.Discipline = codeletfft.FIFO })
}

func BenchmarkAblationLIFOPool(b *testing.B) {
	benchVariant(b, codeletfft.Fine, func(o *codeletfft.Options) { o.Discipline = codeletfft.LIFO })
}

func BenchmarkAblationInterleave(b *testing.B) {
	for _, il := range []int64{16, 64, 256, 1024} {
		il := il
		b.Run(byteSize(il), func(b *testing.B) {
			benchVariant(b, codeletfft.Coarse, func(o *codeletfft.Options) {
				o.Machine.InterleaveBytes = il
			})
		})
	}
}

func BenchmarkAblationOutstanding(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		k := k
		b.Run(byteSize(int64(k)), func(b *testing.B) {
			benchVariant(b, codeletfft.FineGuided, func(o *codeletfft.Options) {
				o.Machine.OutstandingRequests = k
			})
		})
	}
}

func BenchmarkAblationRowBuffer(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchVariant(b, codeletfft.Coarse, nil)
	})
	b.Run("on2KiB", func(b *testing.B) {
		benchVariant(b, codeletfft.Coarse, func(o *codeletfft.Options) {
			o.Machine.RowBytes = 2048
		})
	})
}

// BenchmarkHostTransform measures the raw numeric throughput of the
// staged FFT on the host (no machine simulation) — the cost of running
// the kernels themselves.
func BenchmarkHostTransform(b *testing.B) {
	opts := codeletfft.NewOptions(1<<15, codeletfft.FineGuided)
	for i := 0; i < b.N; i++ {
		res, err := codeletfft.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.SetBytes(int64(1<<15) * 16)
}

// benchHost measures one forward+inverse round trip per iteration of the
// host FFT library (no machine simulation), on a one-worker plan or the
// full parallel engine. The round trip keeps magnitudes bounded across
// iterations so the same buffer can be reused.
func benchHost(b *testing.B, logN int, parallel bool) {
	b.Helper()
	n := 1 << logN
	opts := []codeletfft.HostOption{codeletfft.WithTaskSize(64)}
	if !parallel {
		opts = append(opts, codeletfft.WithWorkers(1))
	}
	h, err := codeletfft.NewHostPlan(n, opts...)
	if err != nil {
		b.Fatal(err)
	}
	data := noise(n, 1)
	b.SetBytes(int64(n) * 16 * 2) // forward + inverse
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Transform(data)
		_ = h.Inverse(data)
	}
}

// BenchmarkHostSerial / BenchmarkHostParallel measure the serial vs
// sharded host engine at N=2^16..2^22 so the speedup is a number, not an
// assertion:
//
//	go test -bench 'BenchmarkHost(Serial|Parallel)' -benchtime 3x
func BenchmarkHostSerial(b *testing.B) {
	for _, logN := range []int{16, 18, 20, 22} {
		b.Run(fmt.Sprintf("N=2^%d", logN), func(b *testing.B) { benchHost(b, logN, false) })
	}
}

func BenchmarkHostParallel(b *testing.B) {
	for _, logN := range []int{16, 18, 20, 22} {
		b.Run(fmt.Sprintf("N=2^%d", logN), func(b *testing.B) { benchHost(b, logN, true) })
	}
}

// BenchmarkHostBatch contrasts B transforms dispatched one at a time
// (sub-benchmark "loop") against one TransformBatch call ("batch") at
// the serving sweet spot N=4096, B=64. The batch path pays the stage
// barriers once for the whole batch and reuses pooled scratch, so it
// should win on any core count:
//
//	go test -bench BenchmarkHostBatch -benchtime 10x
func BenchmarkHostBatch(b *testing.B) {
	const logN, n, batchSize = 12, 1 << 12, 64
	h, err := codeletfft.NewHostPlan(n, codeletfft.WithThreshold(1))
	if err != nil {
		b.Fatal(err)
	}
	batch := make([][]complex128, batchSize)
	for i := range batch {
		batch[i] = noise(n, int64(i))
	}
	bytes := int64(n) * 16 * 2 * batchSize // forward + inverse per transform
	b.Run("loop", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			for _, d := range batch {
				_ = h.Transform(d)
			}
			for _, d := range batch {
				_ = h.Inverse(d)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			_ = h.TransformBatch(batch)
			_ = h.InverseBatch(batch)
		}
	})
}

// BenchmarkHostReal contrasts the complex transform of a real-valued
// signal ("complex") against the packed real-input path ("real") at
// N=2^20. The real path runs one N/2-point transform plus an O(N)
// unpack, about half the work:
//
//	go test -bench BenchmarkHostReal -benchtime 10x
func BenchmarkHostReal(b *testing.B) {
	const logN, n = 20, 1 << 20
	h, err := codeletfft.NewHostPlan(n)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.Run("complex", func(b *testing.B) {
		data := make([]complex128, n)
		b.SetBytes(int64(n) * 16 * 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range data {
				data[j] = complex(x[j], 0)
			}
			_ = h.Transform(data)
		}
	})
	b.Run("real", func(b *testing.B) {
		rp, err := codeletfft.CachedRealPlan(n)
		if err != nil {
			b.Fatal(err)
		}
		spec := make([]complex128, rp.SpectrumLen())
		if err := rp.Transform(spec, x); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(n) * 16 * 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rp.Transform(spec, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHostKernels measures each butterfly kernel family on the
// parallel engine at N=2^20, plus the autotuned default ("auto"), as a
// forward+inverse round trip. This is the table behind the kernel
// autotuner: whichever family wins here is what KernelAuto resolves to
// for this shape on this machine:
//
//	go test -bench BenchmarkHostKernels -benchtime 3x
func BenchmarkHostKernels(b *testing.B) {
	const n = 1 << 20
	kernels := append([]codeletfft.Kernel{codeletfft.KernelAuto}, codeletfft.Kernels()...)
	for _, k := range kernels {
		b.Run(k.String(), func(b *testing.B) {
			h, err := codeletfft.NewHostPlan(n,
				codeletfft.WithTaskSize(64), codeletfft.WithKernel(k))
			if err != nil {
				b.Fatal(err)
			}
			data := noise(n, 1)
			b.SetBytes(int64(n) * 16 * 2) // forward + inverse
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = h.Transform(data)
				_ = h.Inverse(data)
			}
		})
	}
}

// BenchmarkHostSoA tracks the split-plane SIMD pipeline on its own axis
// — serial engine vs parallel engine with the fused radix-4 SoA kernel
// — so an SoA-specific regression (codelet dispatch, pack/unpack, sweep
// partitioning) gates even when the scalar kernels mask it in the
// aggregate. Compare against BenchmarkHostSerial/BenchmarkHostParallel
// at the same sizes for the scalar baseline:
//
//	go test -bench BenchmarkHostSoA -benchtime 3x
func BenchmarkHostSoA(b *testing.B) {
	for _, logN := range []int{18, 20} {
		for _, parallel := range []bool{false, true} {
			mode := "serial"
			if parallel {
				mode = "parallel"
			}
			b.Run(fmt.Sprintf("N=2^%d/%s", logN, mode), func(b *testing.B) {
				n := 1 << logN
				opts := []codeletfft.HostOption{
					codeletfft.WithTaskSize(64),
					codeletfft.WithKernel(codeletfft.KernelSoARadix4),
				}
				if !parallel {
					opts = append(opts, codeletfft.WithWorkers(1))
				}
				h, err := codeletfft.NewHostPlan(n, opts...)
				if err != nil {
					b.Fatal(err)
				}
				data := noise(n, 1)
				b.SetBytes(int64(n) * 16 * 2) // forward + inverse
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = h.Transform(data)
					_ = h.Inverse(data)
				}
			})
		}
	}
}

// BenchmarkMixedRadix measures the arbitrary-N planner against the
// power-of-two baseline at comparable sizes: N=2^20 (staged engine),
// 3·2^18 and 10^6 (mixed-radix codelets), and the prime 2^20+7
// (Bluestein, which pays for a 2^22-point convolution pair plus O(N)
// chirp sweeps — the padded-transform cost an arbitrary-N caller
// avoids everywhere except at large prime N). Forward transform only,
// so the ns/op across sub-benchmarks are directly comparable:
//
//	go test -bench BenchmarkMixedRadix -benchtime 5x
func BenchmarkMixedRadix(b *testing.B) {
	cases := []struct {
		name string
		n    int
	}{
		{"staged/N=2^20", 1 << 20},
		{"mixed/N=3x2^18", 3 << 18},
		{"mixed/N=10^6", 1000000},
		{"bluestein/N=2^20+7", 1<<20 + 7},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			h, err := codeletfft.NewHostPlan(c.n)
			if err != nil {
				b.Fatal(err)
			}
			x := noise(c.n, 1)
			data := make([]complex128, c.n)
			b.SetBytes(int64(c.n) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(data, x)
				_ = h.Transform(data)
			}
		})
	}
}

// BenchmarkCluster contrasts the single-node parallel transform
// ("local") against a loopback cluster of in-process workers
// ("cluster/w=K") at large N. The loopback transport pays the full
// protocol cost — session framing, HTTP handler dispatch, admission,
// worker↔worker exchange — but no network, so this isolates the
// coordination overhead the distributed path adds over raw execution.
// At N=2^22 the resident four-step path works in cache-sized column
// and row blocks, which is where the cluster overtakes the single
// whole-array transform even on one machine:
//
//	go test -bench BenchmarkCluster -benchtime 5x
func BenchmarkCluster(b *testing.B) {
	for _, logN := range []int{20, 22} {
		n := 1 << logN
		data := noise(n, 1)
		scratch := make([]complex128, n)
		b.Run(fmt.Sprintf("N=2^%d/local", logN), func(b *testing.B) {
			h, err := codeletfft.CachedHostPlan(n)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n) * 16)
			for i := 0; i < b.N; i++ {
				copy(scratch, data)
				_ = h.Transform(scratch)
			}
		})
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("N=2^%d/cluster/w=%d", logN, workers), func(b *testing.B) {
				cl, err := cluster.NewLoopback(workers, cluster.Config{})
				if err != nil {
					b.Fatal(err)
				}
				defer cl.Close()
				ctx := context.Background()
				b.SetBytes(int64(n) * 16)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(scratch, data)
					if err := cl.TransformCtx(ctx, scratch); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkOOC measures the out-of-core staged path against the
// all-in-RAM host transform at the same sizes, per scheduling policy —
// the price of the spill staging (informational in CI's bench-compare
// artifact, not gated; the OOC path's value is its memory bound, not
// its speed). File I/O lands in the OS page cache at these sizes, so
// this measures staging overhead, not disk.
//
//	go test -bench BenchmarkOOC -benchtime 3x
func BenchmarkOOC(b *testing.B) {
	for _, logN := range []int{18, 20} {
		n := 1 << logN
		data := noise(n, 3)
		scratch := make([]complex128, n)
		b.Run(fmt.Sprintf("N=2^%d/incore", logN), func(b *testing.B) {
			h, err := codeletfft.CachedHostPlan(n)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n) * 16)
			for i := 0; i < b.N; i++ {
				copy(scratch, data)
				_ = h.Transform(scratch)
			}
		})
		for _, pol := range []codeletfft.OOCPolicy{codeletfft.OOCFIFO(), codeletfft.OOCGuided(1)} {
			name := "fifo"
			if pol.Name() != "fifo" {
				name = "guided"
			}
			b.Run(fmt.Sprintf("N=2^%d/ooc/%s", logN, name), func(b *testing.B) {
				p, err := codeletfft.NewOOCPlan(n,
					codeletfft.OOCSpillDir(b.TempDir()),
					codeletfft.OOCMemoryBudget(64<<20),
					codeletfft.OOCSchedule(pol))
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(n) * 16)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(scratch, data)
					if err := p.Transform(scratch); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func byteSize(v int64) string { return fmt.Sprintf("%d", v) }

// BenchmarkConvolve measures overlap-save convolution throughput at a
// 2^18-sample signal across kernel sizes spanning the segmentation
// regimes: a short FIR (many fresh samples per segment), a medium
// kernel, and one long enough to force large segments. Informational in
// CI (tracked as an artifact, not gated):
//
//	go test -bench BenchmarkConvolve -benchtime 3x
func BenchmarkConvolve(b *testing.B) {
	const n = 1 << 18
	x := noise(n, 1)
	for _, k := range []int{63, 1023, 16383} {
		p, err := codeletfft.NewConvPlan(n, k)
		if err != nil {
			b.Fatal(err)
		}
		h := noise(k, 2)
		dst := make([]complex128, p.OutLen())
		b.Run(fmt.Sprintf("N=2^18/K=%d", k), func(b *testing.B) {
			b.SetBytes(int64(n) * 16)
			for i := 0; i < b.N; i++ {
				if err := p.Convolve(dst, x, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The streaming filter at a realistic chunk size, same signal.
	p, err := codeletfft.NewConvPlan(n, 1023)
	if err != nil {
		b.Fatal(err)
	}
	f, err := p.FilterStream(noise(1023, 2))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]complex128, 4096)
	b.Run("N=2^18/K=1023/stream4096", func(b *testing.B) {
		b.SetBytes(int64(n) * 16)
		for i := 0; i < b.N; i++ {
			f.Reset()
			for off := 0; off < n; off += len(buf) {
				if err := f.Process(buf, x[off:off+len(buf)]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSTFT measures spectrogram throughput over a 2^18-sample
// signal: the batched Transform (all frames in one dispatch) and the
// streaming one-frame-at-a-time path. Informational in CI:
//
//	go test -bench BenchmarkSTFT -benchtime 3x
func BenchmarkSTFT(b *testing.B) {
	const n = 1 << 18
	const frame, hop = 1024, 256
	sig := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range sig {
		sig[i] = rng.NormFloat64()
	}
	p, err := codeletfft.NewSTFTPlan(frame, hop, codeletfft.HannWindow(frame))
	if err != nil {
		b.Fatal(err)
	}
	nf := p.NumFrames(n)
	dst := make([][]complex128, nf)
	for i := range dst {
		dst[i] = make([]complex128, frame)
	}
	b.Run("frame=1024/hop=256/batch", func(b *testing.B) {
		b.SetBytes(int64(n) * 8)
		for i := 0; i < b.N; i++ {
			if err := p.Transform(dst, sig); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("frame=1024/hop=256/stream", func(b *testing.B) {
		s := p.Stream()
		out := make([]complex128, frame)
		b.SetBytes(int64(n) * 8)
		for i := 0; i < b.N; i++ {
			s.Reset()
			for off := 0; off < n; off += hop {
				s.Write(sig[off:min(off+hop, n)])
				if _, err := s.Next(out); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
