package codeletfft_test

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"codeletfft"
)

func noise(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if v := real(d)*real(d) + imag(d)*imag(d); v > m {
			m = v
		}
	}
	return m
}

func TestHostPlanMatchesReference(t *testing.T) {
	n := 1 << 12
	h, err := codeletfft.NewHostPlan(n, codeletfft.WithTaskSize(64))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != n {
		t.Fatalf("N = %d", h.N())
	}
	x := noise(n, 1)
	data := append([]complex128(nil), x...)
	h.Transform(data)
	want := codeletfft.FFT(x)
	if e := maxErr(data, want); e > 1e-12 {
		t.Fatalf("host plan error %g", e)
	}
	h.Inverse(data)
	if e := maxErr(data, x); e > 1e-16 {
		t.Fatalf("roundtrip error %g", e)
	}
}

func TestHostPlanRejectsBadShape(t *testing.T) {
	if _, err := codeletfft.NewHostPlan(100); !errors.Is(err, codeletfft.ErrNotPowerOfTwo) {
		t.Fatalf("NewHostPlan(100) err = %v, want ErrNotPowerOfTwo", err)
	}
	if _, err := codeletfft.NewHostPlan(64, codeletfft.WithTaskSize(3)); !errors.Is(err, codeletfft.ErrBadTaskSize) {
		t.Fatalf("taskSize 3 err = %v, want ErrBadTaskSize", err)
	}
	if _, err := codeletfft.NewHostPlan(64, codeletfft.WithTaskSize(128)); !errors.Is(err, codeletfft.ErrBadTaskSize) {
		t.Fatalf("taskSize > N err = %v, want ErrBadTaskSize", err)
	}
}

// sameBits reports whether a and b are bitwise-identical — the contract
// ParallelTransform documents against Transform.
func sameBits(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

func TestHostPlanParallelMatchesSerial(t *testing.T) {
	n := 1 << 14
	h, err := codeletfft.NewHostPlan(n, codeletfft.WithTaskSize(64))
	if err != nil {
		t.Fatal(err)
	}
	h.SetParallel(codeletfft.ParallelConfig{Workers: 4, Threshold: 1})
	if h.Workers() != 4 {
		t.Fatalf("Workers = %d after SetParallel", h.Workers())
	}
	x := noise(n, 5)
	serial := append([]complex128(nil), x...)
	h.Transform(serial)
	par := append([]complex128(nil), x...)
	h.ParallelTransform(par)
	if !sameBits(par, serial) {
		t.Fatal("ParallelTransform diverged from Transform")
	}
	h.ParallelInverse(par)
	h.Inverse(serial)
	if !sameBits(par, serial) {
		t.Fatal("ParallelInverse diverged from Inverse")
	}
	if e := maxErr(par, x); e > 1e-16 {
		t.Fatalf("parallel roundtrip error %g", e)
	}
}

func TestHostPlan2DParallelMatchesSerial(t *testing.T) {
	h, err := codeletfft.NewHostPlan2D(64, 32, codeletfft.WithTaskSize(8))
	if err != nil {
		t.Fatal(err)
	}
	h.SetParallel(codeletfft.ParallelConfig{Workers: 3, Threshold: 1})
	x := noise(64*32, 6)
	serial := append([]complex128(nil), x...)
	h.Transform(serial)
	par := append([]complex128(nil), x...)
	h.ParallelTransform(par)
	if !sameBits(par, serial) {
		t.Fatal("2-D ParallelTransform diverged from Transform")
	}
	h.ParallelInverse(par)
	if e := maxErr(par, x); e > 1e-16 {
		t.Fatalf("2-D parallel roundtrip error %g", e)
	}
}

func TestHostPlan2DRoundTrip(t *testing.T) {
	h, err := codeletfft.NewHostPlan2D(32, 64, codeletfft.WithTaskSize(16))
	if err != nil {
		t.Fatal(err)
	}
	x := noise(32*64, 2)
	data := append([]complex128(nil), x...)
	h.Transform(data)
	h.Inverse(data)
	if e := maxErr(data, x); e > 1e-16 {
		t.Fatalf("2-D roundtrip error %g", e)
	}
}

func TestStockhamFFTAgreesWithFFT(t *testing.T) {
	x := noise(1024, 3)
	a := codeletfft.StockhamFFT(x)
	b := codeletfft.FFT(x)
	if e := maxErr(a, b); e > 1e-14 {
		t.Fatalf("Stockham vs Cooley-Tukey error %g", e)
	}
}

func TestDFTSmall(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	y := codeletfft.DFT(x)
	if real(y[0]) != 10 {
		t.Fatalf("DC = %v, want 10", y[0])
	}
	back := codeletfft.IFFT(codeletfft.FFT(x))
	if e := maxErr(back, x); e > 1e-20 {
		t.Fatalf("IFFT(FFT(x)) error %g", e)
	}
}

func TestHostPlanOptionDefaults(t *testing.T) {
	h, err := codeletfft.NewHostPlan(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.TaskSize() != 64 {
		t.Fatalf("default TaskSize = %d, want 64", h.TaskSize())
	}
	// The default clamps to the transform length for short inputs.
	small, err := codeletfft.NewHostPlan(16)
	if err != nil {
		t.Fatal(err)
	}
	if small.TaskSize() != 16 {
		t.Fatalf("clamped TaskSize = %d, want 16", small.TaskSize())
	}
	w, err := codeletfft.NewHostPlan(64, codeletfft.WithWorkers(3), codeletfft.WithThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", w.Workers())
	}
}

func TestHostPlanTransformPanicContract(t *testing.T) {
	h, err := codeletfft.NewHostPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		e, ok := v.(error)
		if !ok || !errors.Is(e, codeletfft.ErrLengthMismatch) {
			t.Fatalf("panic value %v, want error wrapping ErrLengthMismatch", v)
		}
	}()
	h.Transform(make([]complex128, 63))
}

func TestHostPlanBatchMatchesLoop(t *testing.T) {
	const n, b = 512, 7
	h, err := codeletfft.NewHostPlan(n, codeletfft.WithWorkers(4), codeletfft.WithThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]complex128, b)
	want := make([][]complex128, b)
	for i := range batch {
		batch[i] = noise(n, int64(i))
		want[i] = append([]complex128(nil), batch[i]...)
		h.Transform(want[i])
	}
	h.TransformBatch(batch)
	for i := range batch {
		if !sameBits(batch[i], want[i]) {
			t.Fatalf("TransformBatch diverged from Transform loop at transform %d", i)
		}
	}
	for i := range want {
		h.Inverse(want[i])
	}
	h.InverseBatch(batch)
	for i := range batch {
		if !sameBits(batch[i], want[i]) {
			t.Fatalf("InverseBatch diverged from Inverse loop at transform %d", i)
		}
	}
}

func TestHostPlanRealRoundTrip(t *testing.T) {
	const n = 1 << 10
	h, err := codeletfft.NewHostPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, n)
	wide := make([]complex128, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		wide[i] = complex(x[i], 0)
	}
	spec := make([]complex128, n/2+1)
	if err := h.RealTransform(spec, x); err != nil {
		t.Fatal(err)
	}
	full := codeletfft.FFT(wide)
	for k := range spec {
		d := spec[k] - full[k]
		if real(d)*real(d)+imag(d)*imag(d) > 1e-18*float64(n) {
			t.Fatalf("RealTransform bin %d = %v, want %v", k, spec[k], full[k])
		}
	}
	pspec := make([]complex128, n/2+1)
	if err := h.ParallelRealTransform(pspec, x); err != nil {
		t.Fatal(err)
	}
	if !sameBits(pspec, spec) {
		t.Fatal("ParallelRealTransform diverged from RealTransform")
	}
	back := make([]float64, n)
	if err := h.RealInverse(back, spec); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if math.Abs(back[i]-x[i]) > 1e-12 {
			t.Fatalf("real round trip diverged at %d: %g vs %g", i, back[i], x[i])
		}
	}
	pback := make([]float64, n)
	if err := h.ParallelRealInverse(pback, spec); err != nil {
		t.Fatal(err)
	}
	for i := range pback {
		if math.Abs(pback[i]-x[i]) > 1e-12 {
			t.Fatalf("parallel real round trip diverged at %d", i)
		}
	}
}

func TestHostPlanRealRejectsTinyPlans(t *testing.T) {
	h, err := codeletfft.NewHostPlan(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.RealTransform(make([]complex128, 2), make([]float64, 2)); !errors.Is(err, codeletfft.ErrNotPowerOfTwo) {
		t.Fatalf("RealTransform on N=2 err = %v, want ErrNotPowerOfTwo", err)
	}
}

func TestCachedHostPlan(t *testing.T) {
	h1, err := codeletfft.CachedHostPlan(1<<9, codeletfft.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	before := codeletfft.PlanCacheLen()
	h2, err := codeletfft.CachedHostPlan(1<<9, codeletfft.WithWorkers(5))
	if err != nil {
		t.Fatal(err)
	}
	if codeletfft.PlanCacheLen() != before {
		t.Fatalf("second CachedHostPlan for the same shape grew the cache: %d -> %d",
			before, codeletfft.PlanCacheLen())
	}
	// Engine options apply per plan even when the core is shared.
	if h1.Workers() != 2 || h2.Workers() != 5 {
		t.Fatalf("Workers = %d, %d, want 2, 5", h1.Workers(), h2.Workers())
	}
	// Distinct task size → distinct cache entry.
	if _, err := codeletfft.CachedHostPlan(1<<9, codeletfft.WithTaskSize(8)); err != nil {
		t.Fatal(err)
	}
	if codeletfft.PlanCacheLen() != before+1 {
		t.Fatalf("distinct task size did not add an entry: %d -> %d",
			before, codeletfft.PlanCacheLen())
	}
	if _, err := codeletfft.CachedHostPlan(1000); !errors.Is(err, codeletfft.ErrNotPowerOfTwo) {
		t.Fatalf("CachedHostPlan(1000) err = %v, want ErrNotPowerOfTwo", err)
	}
	x := noise(1<<9, 13)
	a := append([]complex128(nil), x...)
	b := append([]complex128(nil), x...)
	h1.Transform(a)
	h2.Transform(b)
	if !sameBits(a, b) {
		t.Fatal("cached plans with a shared core disagree")
	}
}

// countObserver counts engine telemetry through the facade option.
type countObserver struct {
	batches, passes atomic.Int64
	occupancy       atomic.Int64
}

func (o *countObserver) ObserveBatch(batch, n int, d time.Duration) {
	o.batches.Add(1)
	o.occupancy.Add(int64(batch))
}

func (o *countObserver) ObservePass(pass string, d time.Duration) { o.passes.Add(1) }

func TestWithObserverThreadsTelemetry(t *testing.T) {
	const n, batchSize = 256, 4
	obs := new(countObserver)
	h, err := codeletfft.NewHostPlan(n,
		codeletfft.WithWorkers(4),
		codeletfft.WithThreshold(1),
		codeletfft.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]complex128, batchSize)
	for i := range batch {
		batch[i] = noise(n, int64(i))
	}
	h.TransformBatch(batch)
	if got := obs.batches.Load(); got != 1 {
		t.Fatalf("ObserveBatch calls = %d, want 1", got)
	}
	if got := obs.occupancy.Load(); got != batchSize {
		t.Fatalf("occupancy = %d, want %d", got, batchSize)
	}
	if obs.passes.Load() == 0 {
		t.Fatal("no passes observed")
	}
}

// TestSetParallelKeepsObserver is the regression test for SetParallel
// silently dropping the observer attached with WithObserver: the
// rebuilt engine must keep reporting telemetry.
func TestSetParallelKeepsObserver(t *testing.T) {
	const n = 256
	obs := new(countObserver)
	h, err := codeletfft.NewHostPlan(n,
		codeletfft.WithThreshold(1),
		codeletfft.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	h.SetParallel(codeletfft.ParallelConfig{Workers: 2, Threshold: 1})
	h.ParallelTransform(noise(n, 1))
	if obs.passes.Load() == 0 {
		t.Fatal("SetParallel dropped the WithObserver observer: no passes reported")
	}

	obs2 := new(countObserver)
	h2, err := codeletfft.NewHostPlan2D(16, 16,
		codeletfft.WithThreshold(1),
		codeletfft.WithObserver(obs2))
	if err != nil {
		t.Fatal(err)
	}
	h2.SetParallel(codeletfft.ParallelConfig{Workers: 2, Threshold: 1})
	h2.ParallelTransform(noise(16*16, 2))
	if obs2.passes.Load() == 0 {
		t.Fatal("HostPlan2D.SetParallel dropped the observer: no passes reported")
	}
}

func TestPlanCacheStats(t *testing.T) {
	h0, m0 := codeletfft.PlanCacheStats()
	const n = 1 << 9 // a size no other test is likely to have cached with this task size
	if _, err := codeletfft.CachedHostPlan(n, codeletfft.WithTaskSize(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := codeletfft.CachedHostPlan(n, codeletfft.WithTaskSize(4)); err != nil {
		t.Fatal(err)
	}
	h1, m1 := codeletfft.PlanCacheStats()
	if m1-m0 < 1 {
		t.Fatalf("misses went %d -> %d, want at least one new miss", m0, m1)
	}
	if h1-h0 < 1 {
		t.Fatalf("hits went %d -> %d, want at least one new hit", h0, h1)
	}
}
