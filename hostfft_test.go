package codeletfft_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"codeletfft"
)

// The facade's providers all satisfy the unified Plan interface.
var _ codeletfft.Plan = (*codeletfft.HostPlan)(nil)

func noise(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if v := real(d)*real(d) + imag(d)*imag(d); v > m {
			m = v
		}
	}
	return m
}

func TestHostPlanMatchesReference(t *testing.T) {
	n := 1 << 12
	h, err := codeletfft.NewHostPlan(n, codeletfft.WithTaskSize(64))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != n {
		t.Fatalf("N = %d", h.N())
	}
	x := noise(n, 1)
	data := append([]complex128(nil), x...)
	if err := h.Transform(data); err != nil {
		t.Fatal(err)
	}
	want := codeletfft.FFT(x)
	if e := maxErr(data, want); e > 1e-12 {
		t.Fatalf("host plan error %g", e)
	}
	if err := h.Inverse(data); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, x); e > 1e-16 {
		t.Fatalf("roundtrip error %g", e)
	}
}

func TestHostPlanRejectsBadShape(t *testing.T) {
	// Non-power-of-two lengths now plan successfully (mixed-radix);
	// only non-positive lengths are rejected.
	for _, n := range []int{0, -1, -64} {
		if _, err := codeletfft.NewHostPlan(n); !errors.Is(err, codeletfft.ErrUnsupportedLength) {
			t.Fatalf("NewHostPlan(%d) err = %v, want ErrUnsupportedLength", n, err)
		}
	}
	if _, err := codeletfft.NewHostPlan(64, codeletfft.WithTaskSize(3)); !errors.Is(err, codeletfft.ErrBadTaskSize) {
		t.Fatalf("taskSize 3 err = %v, want ErrBadTaskSize", err)
	}
	if _, err := codeletfft.NewHostPlan(64, codeletfft.WithTaskSize(128)); !errors.Is(err, codeletfft.ErrBadTaskSize) {
		t.Fatalf("taskSize > N err = %v, want ErrBadTaskSize", err)
	}
}

// sameBits reports whether a and b are bitwise-identical — the
// determinism contract a fixed (plan, kernel) pair documents across
// serial, parallel, and batched execution.
func sameBits(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

// TestHostPlanParallelMatchesSerial pins the facade-level determinism
// guarantee per kernel: a single-worker plan and a multi-worker plan
// with the same pinned kernel produce bitwise-identical output.
func TestHostPlanParallelMatchesSerial(t *testing.T) {
	n := 1 << 14
	for _, k := range codeletfft.Kernels() {
		serialPlan, err := codeletfft.NewHostPlan(n, codeletfft.WithWorkers(1), codeletfft.WithKernel(k))
		if err != nil {
			t.Fatal(err)
		}
		parPlan, err := codeletfft.NewHostPlan(n,
			codeletfft.WithWorkers(4), codeletfft.WithThreshold(1), codeletfft.WithKernel(k))
		if err != nil {
			t.Fatal(err)
		}
		if parPlan.Workers() != 4 {
			t.Fatalf("Workers = %d, want 4", parPlan.Workers())
		}
		x := noise(n, 5)
		serial := append([]complex128(nil), x...)
		_ = serialPlan.Transform(serial)
		par := append([]complex128(nil), x...)
		_ = parPlan.Transform(par)
		if !sameBits(par, serial) {
			t.Fatalf("%v: parallel Transform diverged from serial", k)
		}
		_ = parPlan.Inverse(par)
		_ = serialPlan.Inverse(serial)
		if !sameBits(par, serial) {
			t.Fatalf("%v: parallel Inverse diverged from serial", k)
		}
		if e := maxErr(par, x); e > 1e-16 {
			t.Fatalf("%v: parallel roundtrip error %g", k, e)
		}
	}
}

func TestHostPlan2DParallelMatchesSerial(t *testing.T) {
	for _, k := range codeletfft.Kernels() {
		hs, err := codeletfft.NewHostPlan2D(64, 32,
			codeletfft.WithTaskSize(8), codeletfft.WithWorkers(1), codeletfft.WithKernel(k))
		if err != nil {
			t.Fatal(err)
		}
		hp, err := codeletfft.NewHostPlan2D(64, 32,
			codeletfft.WithTaskSize(8), codeletfft.WithWorkers(3),
			codeletfft.WithThreshold(1), codeletfft.WithKernel(k))
		if err != nil {
			t.Fatal(err)
		}
		x := noise(64*32, 6)
		serial := append([]complex128(nil), x...)
		_ = hs.Transform(serial)
		par := append([]complex128(nil), x...)
		_ = hp.Transform(par)
		if !sameBits(par, serial) {
			t.Fatalf("%v: 2-D parallel Transform diverged from serial", k)
		}
		if err := hp.Inverse(par); err != nil {
			t.Fatalf("%v: 2-D parallel Inverse: %v", k, err)
		}
		if e := maxErr(par, x); e > 1e-16 {
			t.Fatalf("%v: 2-D parallel roundtrip error %g", k, e)
		}
	}
}

func TestHostPlan2DRoundTrip(t *testing.T) {
	h, err := codeletfft.NewHostPlan2D(32, 64, codeletfft.WithTaskSize(16))
	if err != nil {
		t.Fatal(err)
	}
	x := noise(32*64, 2)
	data := append([]complex128(nil), x...)
	_ = h.Transform(data)
	_ = h.Inverse(data)
	if e := maxErr(data, x); e > 1e-16 {
		t.Fatalf("2-D roundtrip error %g", e)
	}
	if k := h.Kernel(); k == codeletfft.KernelAuto {
		t.Fatal("2-D plan did not resolve a concrete kernel")
	}
}

func TestStockhamFFTAgreesWithFFT(t *testing.T) {
	x := noise(1024, 3)
	a := codeletfft.StockhamFFT(x)
	b := codeletfft.FFT(x)
	if e := maxErr(a, b); e > 1e-14 {
		t.Fatalf("Stockham vs Cooley-Tukey error %g", e)
	}
}

func TestDFTSmall(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	y := codeletfft.DFT(x)
	if real(y[0]) != 10 {
		t.Fatalf("DC = %v, want 10", y[0])
	}
	back := codeletfft.IFFT(codeletfft.FFT(x))
	if e := maxErr(back, x); e > 1e-20 {
		t.Fatalf("IFFT(FFT(x)) error %g", e)
	}
}

func TestHostPlanOptionDefaults(t *testing.T) {
	h, err := codeletfft.NewHostPlan(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.TaskSize() != 64 {
		t.Fatalf("default TaskSize = %d, want 64", h.TaskSize())
	}
	// The default clamps to the transform length for short inputs.
	small, err := codeletfft.NewHostPlan(16)
	if err != nil {
		t.Fatal(err)
	}
	if small.TaskSize() != 16 {
		t.Fatalf("clamped TaskSize = %d, want 16", small.TaskSize())
	}
	w, err := codeletfft.NewHostPlan(64, codeletfft.WithWorkers(3), codeletfft.WithThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", w.Workers())
	}
}

// TestWithKernelPinsSelection: WithKernel fixes the kernel without
// tuning, every pinned kernel agrees with the radix-2 reference to
// rounding, and KernelAuto resolves to a concrete kernel that the
// tuner memoizes per shape.
func TestWithKernelPinsSelection(t *testing.T) {
	const n = 1 << 10
	ref, err := codeletfft.NewHostPlan(n, codeletfft.WithKernel(codeletfft.KernelRadix2))
	if err != nil {
		t.Fatal(err)
	}
	x := noise(n, 9)
	want := append([]complex128(nil), x...)
	_ = ref.Transform(want)
	for _, k := range codeletfft.Kernels() {
		h, err := codeletfft.NewHostPlan(n, codeletfft.WithKernel(k))
		if err != nil {
			t.Fatal(err)
		}
		if h.Kernel() != k {
			t.Fatalf("Kernel() = %v, want %v", h.Kernel(), k)
		}
		data := append([]complex128(nil), x...)
		_ = h.Transform(data)
		for i := range data {
			if d := data[i] - want[i]; math.Hypot(real(d), imag(d)) > 1e-9*math.Hypot(real(want[i]), imag(want[i]))+1e-9 {
				t.Fatalf("%v diverged from radix-2 at bin %d", k, i)
			}
		}
		_ = h.Inverse(data)
		if e := maxErr(data, x); e > 1e-16 {
			t.Fatalf("%v roundtrip error %g", k, e)
		}
	}

	auto1, err := codeletfft.NewHostPlan(n, codeletfft.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	auto2, err := codeletfft.NewHostPlan(n, codeletfft.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	k1 := auto1.Kernel()
	if k1 == codeletfft.KernelAuto {
		t.Fatal("Auto plan did not resolve a concrete kernel")
	}
	// Same (N, taskSize, workers) shape → the memoized winner, not a
	// fresh measurement that could disagree.
	if k2 := auto2.Kernel(); k2 != k1 {
		t.Fatalf("same-shape Auto plans resolved %v and %v", k1, k2)
	}
	a := append([]complex128(nil), x...)
	b := append([]complex128(nil), x...)
	_ = auto1.Transform(a)
	_ = auto2.Transform(b)
	if !sameBits(a, b) {
		t.Fatal("same-shape Auto plans disagree bitwise")
	}
}

// TestTransformCtx: the context-aware variants refuse a done context
// without touching data and run normally otherwise.
func TestTransformCtx(t *testing.T) {
	const n = 256
	h, err := codeletfft.NewHostPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := noise(n, 17)
	data := append([]complex128(nil), x...)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := h.TransformCtx(ctx, data); !errors.Is(err, context.Canceled) {
		t.Fatalf("TransformCtx on canceled ctx = %v, want context.Canceled", err)
	}
	if !sameBits(data, x) {
		t.Fatal("canceled TransformCtx modified data")
	}
	if err := h.InverseCtx(ctx, data); !errors.Is(err, context.Canceled) {
		t.Fatalf("InverseCtx on canceled ctx = %v, want context.Canceled", err)
	}

	if err := h.TransformCtx(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	want := append([]complex128(nil), x...)
	_ = h.Transform(want)
	if !sameBits(data, want) {
		t.Fatal("TransformCtx diverged from Transform")
	}
	if err := h.InverseCtx(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, x); e > 1e-16 {
		t.Fatalf("ctx roundtrip error %g", e)
	}
}

// TestPlanInterfaceUsage drives a HostPlan through the Plan interface
// the way serving code does.
func TestPlanInterfaceUsage(t *testing.T) {
	var p codeletfft.Plan
	h, err := codeletfft.NewHostPlan(128)
	if err != nil {
		t.Fatal(err)
	}
	p = h
	x := noise(128, 23)
	data := append([]complex128(nil), x...)
	if err := p.Transform(data); err != nil {
		t.Fatal(err)
	}
	if err := p.Inverse(data); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, x); e > 1e-16 {
		t.Fatalf("interface roundtrip error %g", e)
	}
	batch := [][]complex128{noise(128, 1), noise(128, 2)}
	if err := p.TransformBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := p.InverseBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := p.TransformCtx(context.Background(), data); err != nil {
		t.Fatal(err)
	}
	if err := p.InverseCtx(context.Background(), data); err != nil {
		t.Fatal(err)
	}
}

func TestParseKernelFacade(t *testing.T) {
	cases := map[string]codeletfft.Kernel{
		"auto":        codeletfft.KernelAuto,
		"radix2":      codeletfft.KernelRadix2,
		"radix4":      codeletfft.KernelRadix4,
		"split-radix": codeletfft.KernelSplitRadix,
	}
	for s, want := range cases {
		got, err := codeletfft.ParseKernel(s)
		if err != nil || got != want {
			t.Fatalf("ParseKernel(%q) = %v, %v, want %v", s, got, err, want)
		}
	}
	if _, err := codeletfft.ParseKernel("radix8"); err == nil {
		t.Fatal("ParseKernel accepted an unknown kernel")
	}
}

func TestHostPlanTransformPanicContract(t *testing.T) {
	h, err := codeletfft.NewHostPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		e, ok := v.(error)
		if !ok || !errors.Is(e, codeletfft.ErrLengthMismatch) {
			t.Fatalf("panic value %v, want error wrapping ErrLengthMismatch", v)
		}
	}()
	_ = h.Transform(make([]complex128, 63))
}

// TestBatchPanicNamesIndex: a bad row panics with an error naming the
// offending batch index — the contract the serving daemon's 400s use.
func TestBatchPanicNamesIndex(t *testing.T) {
	h, err := codeletfft.NewHostPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		e, ok := v.(error)
		if !ok || !errors.Is(e, codeletfft.ErrLengthMismatch) {
			t.Fatalf("panic value %v, want error wrapping ErrLengthMismatch", v)
		}
		if want := "batch element 1"; !strings.Contains(e.Error(), want) {
			t.Fatalf("panic %q does not contain %q", e.Error(), want)
		}
	}()
	_ = h.TransformBatch([][]complex128{
		make([]complex128, 64),
		make([]complex128, 32),
	})
}

func TestHostPlanBatchMatchesLoop(t *testing.T) {
	const n, b = 512, 7
	h, err := codeletfft.NewHostPlan(n, codeletfft.WithWorkers(4), codeletfft.WithThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]complex128, b)
	want := make([][]complex128, b)
	for i := range batch {
		batch[i] = noise(n, int64(i))
		want[i] = append([]complex128(nil), batch[i]...)
		_ = h.Transform(want[i])
	}
	_ = h.TransformBatch(batch)
	for i := range batch {
		if !sameBits(batch[i], want[i]) {
			t.Fatalf("TransformBatch diverged from Transform loop at transform %d", i)
		}
	}
	for i := range want {
		_ = h.Inverse(want[i])
	}
	_ = h.InverseBatch(batch)
	for i := range batch {
		if !sameBits(batch[i], want[i]) {
			t.Fatalf("InverseBatch diverged from Inverse loop at transform %d", i)
		}
	}
}

// TestRealPlanEvenLengths: the general even-N real path (mixed-radix or
// Bluestein half transform) matches the full complex transform and
// round-trips, across composite and 2·prime lengths.
func TestRealPlanEvenLengths(t *testing.T) {
	for _, n := range []int{6, 10, 12, 100, 360, 1000, 2310, 1 << 10} {
		r, err := codeletfft.NewRealPlan(n)
		if err != nil {
			t.Fatalf("NewRealPlan(%d): %v", n, err)
		}
		if r.N() != n || r.SpectrumLen() != n/2+1 {
			t.Fatalf("n=%d: N, SpectrumLen = %d, %d", n, r.N(), r.SpectrumLen())
		}
		rng := rand.New(rand.NewSource(11))
		x := make([]float64, n)
		wide := make([]complex128, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			wide[i] = complex(x[i], 0)
		}
		full := codeletfft.DFT(wide)
		spec := make([]complex128, r.SpectrumLen())
		if err := r.Transform(spec, x); err != nil {
			t.Fatal(err)
		}
		for k := range spec {
			d := spec[k] - full[k]
			if math.Hypot(real(d), imag(d)) > 1e-8 {
				t.Fatalf("n=%d (%s): bin %d = %v, want %v", n, r.Algorithm(), k, spec[k], full[k])
			}
		}
		back := make([]float64, n)
		if err := r.Inverse(back, spec); err != nil {
			t.Fatal(err)
		}
		for i := range back {
			if math.Abs(back[i]-x[i]) > 1e-10 {
				t.Fatalf("n=%d: real round trip diverged at %d: %g vs %g", n, i, back[i], x[i])
			}
		}
	}
}

// TestRealPlanFacade covers the typed RealPlan surface: construction
// via the shared option set, kernel pinning, caching, context variants,
// and agreement with the full complex transform.
func TestRealPlanFacade(t *testing.T) {
	const n = 1 << 10
	rng := rand.New(rand.NewSource(29))
	x := make([]float64, n)
	wide := make([]complex128, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		wide[i] = complex(x[i], 0)
	}
	full := codeletfft.FFT(wide)

	for _, k := range append([]codeletfft.Kernel{codeletfft.KernelAuto}, codeletfft.Kernels()...) {
		r, err := codeletfft.NewRealPlan(n, codeletfft.WithKernel(k))
		if err != nil {
			t.Fatal(err)
		}
		if r.N() != n || r.SpectrumLen() != n/2+1 {
			t.Fatalf("N, SpectrumLen = %d, %d", r.N(), r.SpectrumLen())
		}
		if k != codeletfft.KernelAuto && r.Kernel() != k {
			t.Fatalf("Kernel() = %v, want %v", r.Kernel(), k)
		}
		spec := make([]complex128, r.SpectrumLen())
		if err := r.Transform(spec, x); err != nil {
			t.Fatal(err)
		}
		for bin := range spec {
			d := spec[bin] - full[bin]
			if math.Hypot(real(d), imag(d)) > 1e-9 {
				t.Fatalf("%v: bin %d = %v, want %v", k, bin, spec[bin], full[bin])
			}
		}
		back := make([]float64, n)
		if err := r.Inverse(back, spec); err != nil {
			t.Fatal(err)
		}
		for i := range back {
			if math.Abs(back[i]-x[i]) > 1e-12 {
				t.Fatalf("%v: real round trip diverged at %d", k, i)
			}
		}
	}

	// Cached variant shares the packed plan; context variants obey ctx.
	r1, err := codeletfft.CachedRealPlan(n, codeletfft.WithKernel(codeletfft.KernelRadix4))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := codeletfft.CachedRealPlan(n, codeletfft.WithKernel(codeletfft.KernelRadix4))
	if err != nil {
		t.Fatal(err)
	}
	s1 := make([]complex128, r1.SpectrumLen())
	s2 := make([]complex128, r2.SpectrumLen())
	_ = r1.Transform(s1, x)
	_ = r2.Transform(s2, x)
	if !sameBits(s1, s2) {
		t.Fatal("cached real plans disagree")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r1.TransformCtx(ctx, s1, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("TransformCtx on canceled ctx = %v", err)
	}
	back := make([]float64, n)
	if err := r1.InverseCtx(context.Background(), back, s1); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{2, 3, 101} {
		if _, err := codeletfft.NewRealPlan(n); !errors.Is(err, codeletfft.ErrUnsupportedLength) {
			t.Fatalf("NewRealPlan(%d) err = %v, want ErrUnsupportedLength", n, err)
		}
	}
}

func TestCachedHostPlan(t *testing.T) {
	h1, err := codeletfft.CachedHostPlan(1<<9, codeletfft.WithWorkers(2), codeletfft.WithKernel(codeletfft.KernelRadix2))
	if err != nil {
		t.Fatal(err)
	}
	before := codeletfft.PlanCacheLen()
	h2, err := codeletfft.CachedHostPlan(1<<9, codeletfft.WithWorkers(5), codeletfft.WithKernel(codeletfft.KernelRadix2))
	if err != nil {
		t.Fatal(err)
	}
	if codeletfft.PlanCacheLen() != before {
		t.Fatalf("second CachedHostPlan for the same shape grew the cache: %d -> %d",
			before, codeletfft.PlanCacheLen())
	}
	// Engine options apply per plan even when the core is shared.
	if h1.Workers() != 2 || h2.Workers() != 5 {
		t.Fatalf("Workers = %d, %d, want 2, 5", h1.Workers(), h2.Workers())
	}
	// Distinct task size → distinct cache entry.
	if _, err := codeletfft.CachedHostPlan(1<<9, codeletfft.WithTaskSize(8), codeletfft.WithKernel(codeletfft.KernelRadix2)); err != nil {
		t.Fatal(err)
	}
	if codeletfft.PlanCacheLen() != before+1 {
		t.Fatalf("distinct task size did not add an entry: %d -> %d",
			before, codeletfft.PlanCacheLen())
	}
	// Distinct requested kernel → distinct cache entry, so pinning a
	// kernel can never alias an Auto caller's plan.
	if _, err := codeletfft.CachedHostPlan(1<<9, codeletfft.WithKernel(codeletfft.KernelSplitRadix)); err != nil {
		t.Fatal(err)
	}
	if codeletfft.PlanCacheLen() != before+2 {
		t.Fatalf("distinct kernel did not add an entry: %d -> %d",
			before, codeletfft.PlanCacheLen())
	}
	// A non-power-of-two length resolves a mixed-radix core (distinct
	// cache entry — the radix signature keeps it from aliasing staged
	// cores); a negative length still fails.
	if h, err := codeletfft.CachedHostPlan(1000); err != nil || h.N() != 1000 {
		t.Fatalf("CachedHostPlan(1000) = %v, %v, want a 1000-point plan", h, err)
	}
	if _, err := codeletfft.CachedHostPlan(-8); !errors.Is(err, codeletfft.ErrUnsupportedLength) {
		t.Fatalf("CachedHostPlan(-8) err = %v, want ErrUnsupportedLength", err)
	}
	x := noise(1<<9, 13)
	a := append([]complex128(nil), x...)
	b := append([]complex128(nil), x...)
	_ = h1.Transform(a)
	_ = h2.Transform(b)
	if !sameBits(a, b) {
		t.Fatal("cached plans with a shared core disagree")
	}
}

// countObserver counts engine telemetry through the facade option.
type countObserver struct {
	batches, passes atomic.Int64
	occupancy       atomic.Int64
}

func (o *countObserver) ObserveBatch(batch, n int, d time.Duration) {
	o.batches.Add(1)
	o.occupancy.Add(int64(batch))
}

func (o *countObserver) ObservePass(pass string, d time.Duration) { o.passes.Add(1) }

func TestWithObserverThreadsTelemetry(t *testing.T) {
	const n, batchSize = 256, 4
	obs := new(countObserver)
	h, err := codeletfft.NewHostPlan(n,
		codeletfft.WithWorkers(4),
		codeletfft.WithThreshold(1),
		codeletfft.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]complex128, batchSize)
	for i := range batch {
		batch[i] = noise(n, int64(i))
	}
	_ = h.TransformBatch(batch)
	if got := obs.batches.Load(); got != 1 {
		t.Fatalf("ObserveBatch calls = %d, want 1", got)
	}
	if got := obs.occupancy.Load(); got != batchSize {
		t.Fatalf("occupancy = %d, want %d", got, batchSize)
	}
	if obs.passes.Load() == 0 {
		t.Fatal("no passes observed")
	}
}

// TestAutoTuningSkipsObserver: resolving KernelAuto must not leak
// tuning-run telemetry into the plan's observer — the measurement runs
// on a separate observer-free engine.
func TestAutoTuningSkipsObserver(t *testing.T) {
	const n = 256
	obs := new(countObserver)
	h, err := codeletfft.NewHostPlan(n,
		codeletfft.WithWorkers(2),
		codeletfft.WithThreshold(1),
		codeletfft.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if k := h.Kernel(); k == codeletfft.KernelAuto {
		t.Fatal("Auto did not resolve")
	}
	if got := obs.passes.Load(); got != 0 {
		t.Fatalf("tuning leaked %d passes into the plan observer", got)
	}
	_ = h.Transform(noise(n, 1))
	if obs.passes.Load() == 0 {
		t.Fatal("real transform reported no passes")
	}
}

func TestPlanCacheStats(t *testing.T) {
	h0, m0 := codeletfft.PlanCacheStats()
	const n = 1 << 9 // a size no other test is likely to have cached with this task size
	if _, err := codeletfft.CachedHostPlan(n, codeletfft.WithTaskSize(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := codeletfft.CachedHostPlan(n, codeletfft.WithTaskSize(4)); err != nil {
		t.Fatal(err)
	}
	h1, m1 := codeletfft.PlanCacheStats()
	if m1-m0 < 1 {
		t.Fatalf("misses went %d -> %d, want at least one new miss", m0, m1)
	}
	if h1-h0 < 1 {
		t.Fatalf("hits went %d -> %d, want at least one new hit", h0, h1)
	}
}
