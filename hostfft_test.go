package codeletfft_test

import (
	"math"
	"math/rand"
	"testing"

	"codeletfft"
)

func noise(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if v := real(d)*real(d) + imag(d)*imag(d); v > m {
			m = v
		}
	}
	return m
}

func TestHostPlanMatchesReference(t *testing.T) {
	n := 1 << 12
	h, err := codeletfft.NewHostPlan(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != n {
		t.Fatalf("N = %d", h.N())
	}
	x := noise(n, 1)
	data := append([]complex128(nil), x...)
	h.Transform(data)
	want := codeletfft.FFT(x)
	if e := maxErr(data, want); e > 1e-12 {
		t.Fatalf("host plan error %g", e)
	}
	h.Inverse(data)
	if e := maxErr(data, x); e > 1e-16 {
		t.Fatalf("roundtrip error %g", e)
	}
}

func TestHostPlanRejectsBadShape(t *testing.T) {
	if _, err := codeletfft.NewHostPlan(100, 64); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}

// sameBits reports whether a and b are bitwise-identical — the contract
// ParallelTransform documents against Transform.
func sameBits(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

func TestHostPlanParallelMatchesSerial(t *testing.T) {
	n := 1 << 14
	h, err := codeletfft.NewHostPlan(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	h.SetParallel(codeletfft.ParallelConfig{Workers: 4, Threshold: 1})
	if h.Workers() != 4 {
		t.Fatalf("Workers = %d after SetParallel", h.Workers())
	}
	x := noise(n, 5)
	serial := append([]complex128(nil), x...)
	h.Transform(serial)
	par := append([]complex128(nil), x...)
	h.ParallelTransform(par)
	if !sameBits(par, serial) {
		t.Fatal("ParallelTransform diverged from Transform")
	}
	h.ParallelInverse(par)
	h.Inverse(serial)
	if !sameBits(par, serial) {
		t.Fatal("ParallelInverse diverged from Inverse")
	}
	if e := maxErr(par, x); e > 1e-16 {
		t.Fatalf("parallel roundtrip error %g", e)
	}
}

func TestHostPlan2DParallelMatchesSerial(t *testing.T) {
	h, err := codeletfft.NewHostPlan2D(64, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.SetParallel(codeletfft.ParallelConfig{Workers: 3, Threshold: 1})
	x := noise(64*32, 6)
	serial := append([]complex128(nil), x...)
	h.Transform(serial)
	par := append([]complex128(nil), x...)
	h.ParallelTransform(par)
	if !sameBits(par, serial) {
		t.Fatal("2-D ParallelTransform diverged from Transform")
	}
	h.ParallelInverse(par)
	if e := maxErr(par, x); e > 1e-16 {
		t.Fatalf("2-D parallel roundtrip error %g", e)
	}
}

func TestHostPlan2DRoundTrip(t *testing.T) {
	h, err := codeletfft.NewHostPlan2D(32, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	x := noise(32*64, 2)
	data := append([]complex128(nil), x...)
	h.Transform(data)
	h.Inverse(data)
	if e := maxErr(data, x); e > 1e-16 {
		t.Fatalf("2-D roundtrip error %g", e)
	}
}

func TestStockhamFFTAgreesWithFFT(t *testing.T) {
	x := noise(1024, 3)
	a := codeletfft.StockhamFFT(x)
	b := codeletfft.FFT(x)
	if e := maxErr(a, b); e > 1e-14 {
		t.Fatalf("Stockham vs Cooley-Tukey error %g", e)
	}
}

func TestDFTSmall(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	y := codeletfft.DFT(x)
	if real(y[0]) != 10 {
		t.Fatalf("DC = %v, want 10", y[0])
	}
	back := codeletfft.IFFT(codeletfft.FFT(x))
	if e := maxErr(back, x); e > 1e-20 {
		t.Fatalf("IFFT(FFT(x)) error %g", e)
	}
}
